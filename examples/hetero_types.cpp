// Heterogeneous data conversion in depth (§2.3).
//
// Demonstrates the pieces of Mermaid's conversion machinery:
//   1. user-defined record types composed from field descriptors — the
//      "conversion routine calls the appropriate conversion routine for
//      each field" scheme (and what the paper's planned preprocessor would
//      have generated automatically);
//   2. a fully custom per-element converter for an opaque type;
//   3. pointer relocation: converting DSM addresses by the inter-host base
//      offset (zero in this system, demonstrated standalone here);
//   4. the paper's precision caveat: VAX-D has 55 fraction bits to IEEE
//      double's 52, so values can change when pages bounce between
//      representations.
#include <cmath>
#include <cstdio>

#include "mermaid/arch/scalar.h"
#include "mermaid/arch/type_registry.h"
#include "mermaid/arch/vaxfloat.h"
#include "mermaid/dsm/system.h"
#include "mermaid/sim/engine.h"

using namespace mermaid;
using Reg = arch::TypeRegistry;

int main() {
  sim::Engine engine;
  dsm::SystemConfig config;
  config.region_bytes = 1u << 20;
  dsm::System sys(engine, config,
                  {&arch::Sun3Profile(), &arch::FireflyProfile()});

  // --- 1. a record type: struct { int id; float xy[2]; short flags[2]; }
  arch::TypeId point = sys.registry().RegisterRecord(
      "point", {{Reg::kInt, 1}, {Reg::kFloat, 2}, {Reg::kShort, 2}});
  std::printf("registered record 'point' (%zu bytes)\n",
              sys.registry().SizeOf(point));

  // --- 2. an opaque type with a custom converter: a 4-byte tag that is
  // nibble-swapped between host families (stand-in for any app-specific
  // encoding the descriptor scheme cannot express).
  arch::TypeId tag = sys.registry().RegisterCustom(
      "tag4", 4, [](std::span<std::uint8_t> bytes, const arch::ConvertContext&) {
        for (auto& b : bytes) {
          b = static_cast<std::uint8_t>((b << 4) | (b >> 4));
        }
      });

  sys.Start();

  constexpr sync::SyncId kReady = 1, kDone = 2;
  sys.SpawnThread(0, "sun", [&](dsm::Host& h) {
    dsm::GlobalAddr pts = sys.Alloc(0, point, 4);
    const std::size_t sz = sys.registry().SizeOf(point);
    for (int i = 0; i < 4; ++i) {
      h.Write<std::int32_t>(pts + i * sz + 0, 100 + i);
      h.Write<float>(pts + i * sz + 4, 0.5f * i);
      h.Write<float>(pts + i * sz + 8, -0.5f * i);
      h.Write<std::int16_t>(pts + i * sz + 12, static_cast<std::int16_t>(i));
      h.Write<std::int16_t>(pts + i * sz + 14, -1);
    }
    dsm::GlobalAddr tags = sys.Alloc(0, tag, 2);
    h.Write<std::uint8_t>(tags, 0xAB);
    sys.sync(0).EventSet(kReady);
    sys.sync(0).EventWait(kDone);
  });
  sys.SpawnThread(1, "firefly", [&](dsm::Host& h) {
    sys.sync(1).EventWait(kReady);
    const std::size_t sz = sys.registry().SizeOf(point);
    std::printf("\nFirefly reads the records back (after byte-swap + "
                "IEEE->VAX-F conversion):\n");
    for (int i = 0; i < 4; ++i) {
      std::printf("  point %d: id=%d  xy=(%.1f, %.1f) flags=(%d, %d)\n", i,
                  h.Read<std::int32_t>(i * sz + 0), h.Read<float>(i * sz + 4),
                  h.Read<float>(i * sz + 8), h.Read<std::int16_t>(i * sz + 12),
                  h.Read<std::int16_t>(i * sz + 14));
    }
    sys.sync(1).EventSet(kDone);
  });
  engine.Run();

  // --- 3. pointer relocation, standalone: hosts mapping the DSM region at
  // different bases adjust embedded pointers by the base delta.
  {
    Reg reg;
    std::uint8_t mem[8];
    arch::StoreScalar<std::uint64_t>(arch::Sun3Profile(), mem, 0x4000);
    arch::ConvertContext ctx;
    ctx.src = &arch::Sun3Profile();
    ctx.dst = &arch::FireflyProfile();
    ctx.pointer_delta = 0x10000;  // Firefly maps the region 64 KB higher
    reg.ConvertBuffer(Reg::kPointer, mem, 1, ctx);
    std::printf("\npointer 0x4000 on the Sun relocates to 0x%llx on the "
                "Firefly\n",
                static_cast<unsigned long long>(
                    arch::LoadScalar<std::uint64_t>(arch::FireflyProfile(),
                                                    mem)));
  }

  // --- 4. precision: a double whose 53rd-55th mantissa bits are populated
  // survives IEEE->VAX-D exactly, but a VAX-D value with more precision
  // than IEEE can hold is rounded when it travels the other way.
  {
    std::uint8_t vax[8];
    arch::IeeeToVaxD(1.0, vax);
    vax[6] |= 0x07;  // set the three extra VAX-D fraction bits
    double back = 0;
    arch::VaxDToIeee(vax, &back);
    std::printf("VAX-D (1 + 7*2^-55) reads back as %.17g on IEEE hosts — "
                "the paper's precision-loss caveat\n",
                back);
  }
  return 0;
}
