// Parallel matrix multiplication on heterogeneous DSM — the paper's main
// benchmark application, runnable with configurable size, thread count,
// host mix, work division (MM1/MM2) and page-size algorithm.
//
//   ./build/examples/example_matrix_multiply [n] [threads] [fireflies]
//                                            [mm2] [small]
//   e.g. ./build/examples/example_matrix_multiply 256 8 4
//        ./build/examples/example_matrix_multiply 128 8 3 mm2
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "mermaid/apps/matmul.h"
#include "mermaid/sim/engine.h"

using namespace mermaid;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 256;
  const int threads = argc > 2 ? std::atoi(argv[2]) : 8;
  const int fireflies = argc > 3 ? std::atoi(argv[3]) : 4;
  bool mm2 = false, small_pages = false;
  for (int i = 4; i < argc; ++i) {
    if (std::strcmp(argv[i], "mm2") == 0) mm2 = true;
    if (std::strcmp(argv[i], "small") == 0) small_pages = true;
  }

  sim::Engine engine;
  dsm::SystemConfig config;
  config.region_bytes = 16u << 20;
  config.page_policy = small_pages ? dsm::PageSizePolicy::kSmallest
                                   : dsm::PageSizePolicy::kLargest;

  std::vector<const arch::ArchProfile*> hosts{&arch::Sun3Profile()};
  for (int i = 0; i < fireflies; ++i) hosts.push_back(&arch::FireflyProfile());
  dsm::System sys(engine, config, hosts);
  sys.Start();

  apps::MatMulConfig mm;
  mm.n = n;
  mm.num_threads = threads;
  mm.master_host = 0;
  for (int i = 1; i <= fireflies; ++i) {
    mm.worker_hosts.push_back(static_cast<net::HostId>(i));
  }
  mm.round_robin_rows = mm2;

  std::printf("%s: %dx%d ints, %d threads on %d Fireflies, master on Sun, "
              "%s page size algorithm\n",
              mm2 ? "MM2" : "MM1", n, n, threads, fireflies,
              small_pages ? "smallest" : "largest");

  apps::MatMulResult result;
  apps::SetupMatMul(sys, mm, &result);
  engine.Run();

  auto& stats = sys.GatherStats();
  std::printf("response time: %.1f s (virtual)  result %s\n",
              ToSeconds(result.elapsed),
              result.correct ? "verified correct" : "WRONG");
  std::printf("faults: %lld read / %lld write; pages moved: %lld "
              "(%lld KB); conversions: %lld\n\n",
              static_cast<long long>(stats.Count("dsm.read_faults")),
              static_cast<long long>(stats.Count("dsm.write_faults")),
              static_cast<long long>(stats.Count("dsm.pages_in")),
              static_cast<long long>(stats.Count("dsm.bytes_in") / 1024),
              static_cast<long long>(stats.Count("dsm.conversions")));
  std::printf("%s", sys.ReportStats().c_str());
  return 0;
}
