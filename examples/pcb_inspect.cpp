// PCB design-rule inspection on heterogeneous DSM (§3.2's second
// application). A synthetic board replaces the paper's camera images; the
// checker finds narrow conductors, spacing violations, and pads without
// drill holes, highlighting them in an overlay image. The master runs on a
// Sun workstation (the operator's display host), checker threads on
// Firefly compute servers.
//
//   ./build/examples/example_pcb_inspect [threads] [fireflies] [seed]
#include <cstdio>
#include <cstdlib>

#include "mermaid/apps/pcb.h"
#include "mermaid/sim/engine.h"

using namespace mermaid;

namespace {

// Renders a small window of the board with violations marked 'X'.
void RenderWindow(const std::vector<std::uint8_t>& board,
                  const std::vector<std::uint8_t>& overlay, int height,
                  int rows, int cols, int col0) {
  const char glyph[] = {'.', '#', 'O', '@'};  // empty/copper/pad/hole
  for (int r = 0; r < rows; ++r) {
    for (int c = col0; c < col0 + cols; ++c) {
      const std::size_t i = static_cast<std::size_t>(c) * height + r;
      std::putchar(overlay[i] != 0 ? 'X' : glyph[board[i] & 3]);
    }
    std::putchar('\n');
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 8;
  const int fireflies = argc > 2 ? std::atoi(argv[2]) : 3;
  const std::uint64_t seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 42;

  sim::Engine engine;
  dsm::SystemConfig config;
  config.region_bytes = 4u << 20;
  dsm::System sys(engine, config, [&] {
    std::vector<const arch::ArchProfile*> hosts{&arch::Sun3Profile()};
    for (int i = 0; i < fireflies; ++i) {
      hosts.push_back(&arch::FireflyProfile());
    }
    return hosts;
  }());
  arch::TypeId stats_type = apps::RegisterPcbTypes(sys.registry());
  sys.Start();

  apps::PcbConfig pcb;
  pcb.height = 200;
  pcb.width = 1600;  // 2 cm x 16 cm at 10 px/mm
  pcb.num_threads = threads;
  pcb.seed = seed;
  for (int i = 1; i <= fireflies; ++i) {
    pcb.worker_hosts.push_back(static_cast<net::HostId>(i));
  }

  std::printf("inspecting a 2 cm x 16 cm board, %d threads on %d "
              "Fireflies, master on a Sun\n",
              threads, fireflies);
  apps::PcbResult result;
  apps::SetupPcb(sys, stats_type, pcb, &result);
  engine.Run();

  std::printf("\ninspection finished in %.1f s (virtual), results %s\n",
              ToSeconds(result.elapsed),
              result.correct ? "match the sequential reference"
                             : "DO NOT MATCH");
  std::printf("violations: %d narrow conductors, %d spacing, %d missing "
              "holes\n",
              result.stats.narrow, result.stats.spacing,
              result.stats.missing_hole);

  // Show the operator's view of a board region.
  auto board = apps::GenerateBoard(pcb.height, pcb.width, pcb.seed);
  std::vector<std::uint8_t> overlay;
  apps::CheckBoardReference(board, pcb.height, pcb.width, &overlay);
  std::printf("\nboard close-up (#=copper O=pad @=hole X=violation):\n");
  RenderWindow(board, overlay, pcb.height, 40, 100,
               pcb.width * 3 / 4);  // the dense end of the board
  return 0;
}
