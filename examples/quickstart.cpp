// Quickstart: a two-host heterogeneous Mermaid system.
//
// A big-endian IEEE Sun-3 and a little-endian VAX-float Firefly share one
// coherent address space. The Sun writes an array of doubles; the Firefly
// reads them (the page migrates and is converted IEEE -> VAX-D in flight),
// scales them, and the Sun reads the results back. Synchronization uses the
// distributed event facility rather than shared-memory flags.
//
// Build & run:  cmake --build build && ./build/examples/example_quickstart
#include <cstdio>

#include "mermaid/apps/matmul.h"  // pulls in the full public API
#include "mermaid/dsm/system.h"
#include "mermaid/sim/engine.h"

using namespace mermaid;

int main() {
  sim::Engine engine;

  dsm::SystemConfig config;
  config.region_bytes = 1u << 20;  // 1 MB shared region

  dsm::System sys(engine, config,
                  {&arch::Sun3Profile(), &arch::FireflyProfile()});
  sys.Start();

  constexpr int kCount = 16;
  constexpr sync::SyncId kWritten = 1, kScaled = 2;

  sys.SpawnThread(0, "sun", [&](dsm::Host& h) {
    // One data type per page, allocated through the typed allocator.
    dsm::GlobalAddr a =
        sys.Alloc(h.id(), arch::TypeRegistry::kDouble, kCount);
    for (int i = 0; i < kCount; ++i) {
      h.Write<double>(a + 8 * i, 1.5 * i);
    }
    std::printf("[sun]  wrote %d doubles (big-endian IEEE pages)\n", kCount);
    sys.sync(h.id()).EventSet(kWritten);
    sys.sync(h.id()).EventWait(kScaled);
    double sum = 0;
    for (int i = 0; i < kCount; ++i) sum += h.Read<double>(a + 8 * i);
    std::printf("[sun]  read back scaled values, sum = %.1f (expect %.1f)\n",
                sum, 10.0 * 1.5 * (kCount - 1) * kCount / 2);
  });

  sys.SpawnThread(1, "firefly", [&](dsm::Host& h) {
    sys.sync(h.id()).EventWait(kWritten);
    // These reads fault the page over the simulated Ethernet and convert it
    // to VAX-D representation before installing it.
    for (int i = 0; i < kCount; ++i) {
      double v = h.Read<double>(8ull * i);
      h.Write<double>(8ull * i, v * 10.0);
    }
    std::printf("[ffly] scaled %d doubles in VAX-D representation\n", kCount);
    sys.sync(h.id()).EventSet(kScaled);
  });

  engine.Run();

  auto& stats = sys.GatherStats();
  std::printf("\npages transferred: %lld, conversions: %lld, "
              "virtual time: %.1f ms\n",
              static_cast<long long>(stats.Count("dsm.pages_in")),
              static_cast<long long>(stats.Count("dsm.conversions")),
              ToMillis(engine.Now()));
  return 0;
}
